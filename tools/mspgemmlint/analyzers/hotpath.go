package analyzers

import (
	"go/ast"
	"go/types"

	"maskedspgemm/tools/mspgemmlint/analysis"
)

// Hotpath pins PR 6's flat-loop contract: functions annotated
// //mspgemm:hotpath are the accumulator Insert/Gather/Begin loops, row
// push kernels, and scheduler claim paths whose speed depends on the
// compiler seeing straight-line, allocation-free code. Inside them the
// analyzer bans the constructs that defeat that: defer (function-exit
// bookkeeping), closures (potential escapes), goroutine and select
// statements, map iteration (random order, hash walking), type
// asserts, interface method calls, and any conversion of a concrete
// value to an interface (hidden allocation + dynamic dispatch).
//
// It also owns the annotation vocabulary: any //mspgemm: comment whose
// directive is not in the known set is flagged as a likely typo, so a
// misspelled annotation cannot silently disable a contract.
var Hotpath = &analysis.Analyzer{
	Name: "hotpath",
	Doc: "forbid defer, closures, map iteration, and interface " +
		"conversions inside //mspgemm:hotpath functions (flat-loop contract, PR 6)",
	Run: runHotpath,
}

func runHotpath(pass *analysis.Pass) error {
	checkDirectiveSpelling(pass)
	forEachFunc(pass, func(_ *ast.File, fd *ast.FuncDecl) {
		if fd.Body == nil || !hasDirective(fd.Doc, DirHotpath) {
			return
		}
		checkHotBody(pass, fd)
	})
	return nil
}

// checkDirectiveSpelling flags unknown //mspgemm: directives anywhere
// in the package's non-test files.
func checkDirectiveSpelling(pass *analysis.Pass) {
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		for _, cg := range f.Comments {
			for _, d := range parseDirectives(cg) {
				if !knownDirectives[d.Name] {
					pass.Reportf(d.Pos,
						"unknown directive //mspgemm:%s (known: hotpath, immutable, nilsafe, planwrite); a typo here silently disables the contract",
						d.Name)
				}
			}
		}
	}
}

// checkHotBody walks one annotated function body and reports every
// banned construct.
func checkHotBody(pass *analysis.Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			pass.Reportf(n.Pos(), "defer in //mspgemm:hotpath function %s; hot loops must stay free of function-exit bookkeeping", name)
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "go statement in //mspgemm:hotpath function %s; hot loops must not spawn goroutines", name)
		case *ast.SelectStmt:
			pass.Reportf(n.Pos(), "select in //mspgemm:hotpath function %s; channel operations do not belong in hot loops", name)
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure in //mspgemm:hotpath function %s; closures risk heap escapes of captured loop state", name)
			return false
		case *ast.TypeAssertExpr:
			pass.Reportf(n.Pos(), "type assertion in //mspgemm:hotpath function %s; dynamic type checks do not belong in hot loops", name)
		case *ast.RangeStmt:
			if tv, ok := pass.TypesInfo.Types[n.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					pass.Reportf(n.Pos(), "map iteration in //mspgemm:hotpath function %s; hash-order walks do not belong in hot loops", name)
				}
			}
		case *ast.CallExpr:
			checkHotCall(pass, name, n)
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					checkInterfaceConversion(pass, name, n.Lhs[i], n.Rhs[i])
				}
			}
		}
		return true
	})
}

// checkHotCall reports interface conversions hidden in a call: an
// explicit conversion to an interface type, an interface-typed method
// receiver, or a concrete argument passed to an interface parameter.
func checkHotCall(pass *analysis.Pass, fn string, call *ast.CallExpr) {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok {
		return
	}
	if tv.IsType() {
		// Explicit conversion T(x).
		if isInterface(tv.Type) && len(call.Args) == 1 && isConcrete(pass, call.Args[0]) {
			pass.Reportf(call.Pos(),
				"conversion to interface type %s in //mspgemm:hotpath function %s; interface conversions allocate and add dynamic dispatch",
				tv.Type, fn)
		}
		return
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if xt, ok := pass.TypesInfo.Types[sel.X]; ok && xt.IsValue() && isInterface(xt.Type) {
			pass.Reportf(call.Pos(),
				"interface method call %s.%s in //mspgemm:hotpath function %s; dynamic dispatch does not belong in hot loops",
				xt.Type, sel.Sel.Name, fn)
		}
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		// Builtins (len, append, ...) have no signature and no
		// interface parameters.
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				// arg... forwards the slice unchanged; no per-element
				// conversion happens.
				continue
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if isInterface(pt) && isConcrete(pass, arg) {
			pass.Reportf(arg.Pos(),
				"argument converts to interface type %s in //mspgemm:hotpath function %s; interface conversions allocate and add dynamic dispatch",
				pt, fn)
		}
	}
}

// checkInterfaceConversion reports a concrete value assigned to an
// interface-typed location.
func checkInterfaceConversion(pass *analysis.Pass, fn string, lhs, rhs ast.Expr) {
	lt, ok := pass.TypesInfo.Types[lhs]
	if !ok || !isInterface(lt.Type) {
		// Also covers := definitions, whose LHS type is the RHS type —
		// a definition never converts.
		return
	}
	if isConcrete(pass, rhs) {
		pass.Reportf(rhs.Pos(),
			"assignment converts a concrete value to interface type %s in //mspgemm:hotpath function %s; interface conversions allocate",
			lt.Type, fn)
	}
}

// isInterface reports whether t is a true interface type. Type
// parameters are excluded even though their underlying type is the
// constraint interface: a call or assignment through a type parameter
// is stenciled statically by the compiler, which is exactly how the
// accumulator kernels get their semiring operations inlined.
func isInterface(t types.Type) bool {
	t = types.Unalias(t)
	if _, ok := t.(*types.TypeParam); ok {
		return false
	}
	if named, ok := t.(*types.Named); ok {
		if _, ok := named.Underlying().(*types.Interface); ok {
			return true
		}
		return false
	}
	_, ok := t.(*types.Interface)
	return ok
}

// isConcrete reports whether expr is a typed non-interface, non-nil
// value: the shapes whose conversion to an interface materializes an
// itab and possibly an allocation.
func isConcrete(pass *analysis.Pass, expr ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.IsNil() || tv.Type == nil {
		return false
	}
	if _, untyped := tv.Type.(*types.Basic); untyped && tv.Type.(*types.Basic).Info()&types.IsUntyped != 0 {
		return false
	}
	return !isInterface(tv.Type)
}
