package analyzers

import (
	"go/ast"
	"go/types"

	"maskedspgemm/tools/mspgemmlint/analysis"
)

// Planimmut pins DESIGN §8's ownership contract: a Plan and the slices
// it owns are immutable once published. Types opt in with
// //mspgemm:immutable; the only functions allowed to assign their
// fields (directly or through an owned slice element) are the ones
// annotated //mspgemm:planwrite — the constructors and the rebind
// clone, which mutate a detached copy before publication.
var Planimmut = &analysis.Analyzer{
	Name: "planimmut",
	Doc: "flag writes to fields of //mspgemm:immutable types outside " +
		"//mspgemm:planwrite functions (plan ownership, DESIGN §8)",
	Run: runPlanimmut,
}

func runPlanimmut(pass *analysis.Pass) error {
	immutable := annotatedTypes(pass.Files, DirImmutable)
	if len(immutable) == 0 {
		return nil
	}
	forEachFunc(pass, func(_ *ast.File, fd *ast.FuncDecl) {
		if fd.Body == nil || hasDirective(fd.Doc, DirPlanwrite) {
			return
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					checkImmutableWrite(pass, immutable, lhs)
				}
			case *ast.IncDecStmt:
				checkImmutableWrite(pass, immutable, n.X)
			}
			return true
		})
	})
	return nil
}

// checkImmutableWrite reports lhs when it writes a field of an
// immutable type, either directly (p.f = v) or through an owned slice
// or array element (p.f[i] = v).
func checkImmutableWrite(pass *analysis.Pass, immutable map[string]bool, lhs ast.Expr) {
	// Strip element and dereference layers down to the field selector.
	for {
		switch e := lhs.(type) {
		case *ast.IndexExpr:
			lhs = e.X
			continue
		case *ast.ParenExpr:
			lhs = e.X
			continue
		case *ast.StarExpr:
			lhs = e.X
			continue
		}
		break
	}
	sel, ok := lhs.(*ast.SelectorExpr)
	if !ok {
		return
	}
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	name, ok := immutableBase(pass, immutable, sel.X)
	if !ok {
		return
	}
	pass.Reportf(sel.Pos(),
		"write to field %s of //mspgemm:immutable type %s outside a //mspgemm:planwrite function (plans are immutable after construction, DESIGN §8)",
		sel.Sel.Name, name)
}

// immutableBase reports whether expr's type is (a pointer to) a named
// type in this package annotated //mspgemm:immutable, returning the
// type name. Generic instantiations resolve through their origin.
func immutableBase(pass *analysis.Pass, immutable map[string]bool, expr ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok {
		return "", false
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Origin().Obj()
	if obj.Pkg() != pass.Pkg || !immutable[obj.Name()] {
		return "", false
	}
	return obj.Name(), true
}
