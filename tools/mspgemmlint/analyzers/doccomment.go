package analyzers

import (
	"go/ast"
	"go/token"

	"maskedspgemm/tools/mspgemmlint/analysis"
)

// Doccomment is the former tools/lintdoc doc-coverage linter folded
// into the suite: every exported const, var, type, function, method,
// and struct field must carry a doc comment. Grouped declarations may
// document the group, embedded fields are exempt (they are documented
// at their own declaration), and test files are skipped.
var Doccomment = &analysis.Analyzer{
	Name: "doccomment",
	Doc: "require a godoc comment on every exported identifier " +
		"(documentation rule, formerly tools/lintdoc)",
	Run: runDoccomment,
}

func runDoccomment(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		checkFileDocs(pass, f)
	}
	return nil
}

// checkFileDocs walks one file's top-level declarations.
func checkFileDocs(pass *analysis.Pass, f *ast.File) {
	report := func(pos token.Pos, what, name string) {
		pass.Reportf(pos, "undocumented exported %s %s", what, name)
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Name.IsExported() && d.Doc == nil {
				what := "function"
				if d.Recv != nil {
					what = "method"
				}
				report(d.Pos(), what, d.Name.Name)
			}
		case *ast.GenDecl:
			groupDoc := d.Doc != nil
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && s.Doc == nil && s.Comment == nil && !groupDoc {
						report(s.Pos(), "type", s.Name.Name)
					}
					if s.Name.IsExported() {
						checkFieldDocs(pass, s)
					}
				case *ast.ValueSpec:
					for _, n := range s.Names {
						if n.IsExported() && s.Doc == nil && s.Comment == nil && !groupDoc {
							report(n.Pos(), declKind(d.Tok), n.Name)
						}
					}
				}
			}
		}
	}
}

// declKind names a value declaration for diagnostics.
func declKind(tok token.Token) string {
	if tok == token.CONST {
		return "const"
	}
	return "var"
}

// checkFieldDocs reports undocumented exported fields of an exported
// struct type.
func checkFieldDocs(pass *analysis.Pass, s *ast.TypeSpec) {
	st, ok := s.Type.(*ast.StructType)
	if !ok || st.Fields == nil {
		return
	}
	for _, field := range st.Fields.List {
		if field.Doc != nil || field.Comment != nil {
			continue
		}
		for _, n := range field.Names {
			if n.IsExported() {
				pass.Reportf(n.Pos(), "undocumented exported field %s.%s", s.Name.Name, n.Name)
			}
		}
	}
}
