package analyzers

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"maskedspgemm/tools/mspgemmlint/analysis"
)

// Lockorder pins PR 7's deadlock contract: MemBudget sits above every
// BudgetMember in the lock hierarchy, so the locking entry points
// (Rebalance, Register — both take the budget's own mutex and call
// back into members) must never run while the caller holds a mutex.
// Reserve, Release, and Stamp are lock-free by design and stay legal
// under member locks.
//
// The check is lexical: within one function body, a mutex counts as
// held from a Lock/RLock call until the matching same-expression
// Unlock/RUnlock; a deferred unlock keeps it held to the end of the
// body. Calls reached through other functions are out of scope — the
// contract holds because the public entry points are clean.
var Lockorder = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "flag MemBudget.Rebalance/Register calls made while a mutex is " +
		"held (budget-above-member lock order, PR 7)",
	Run: runLockorder,
}

// lockEvent is one Lock/Unlock/budget-entry call in source order.
type lockEvent struct {
	// pos orders the events and locates diagnostics.
	pos token.Pos
	// kind is "lock", "unlock", or "budget".
	kind string
	// mutex is the rendered receiver expression for lock/unlock events.
	mutex string
	// method is the called budget method for budget events.
	method string
}

// budgetEntryPoints are the MemBudget methods that take the budget
// mutex and must therefore be called lock-free.
var budgetEntryPoints = map[string]bool{
	"Rebalance": true,
	"Register":  true,
}

func runLockorder(pass *analysis.Pass) error {
	forEachFunc(pass, func(_ *ast.File, fd *ast.FuncDecl) {
		if fd.Body == nil {
			return
		}
		events := collectLockEvents(pass, fd.Body)
		sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
		held := make(map[string]int)
		for _, ev := range events {
			switch ev.kind {
			case "lock":
				held[ev.mutex]++
			case "unlock":
				if held[ev.mutex] > 0 {
					held[ev.mutex]--
				}
			case "budget":
				for mutex, n := range held {
					if n > 0 {
						pass.Reportf(ev.pos,
							"MemBudget.%s called while %s is held; budget entry points lock the budget mutex and must be called lock-free (budget-above-member order, PR 7)",
							ev.method, mutex)
						break
					}
				}
			}
		}
	})
	return nil
}

// collectLockEvents gathers the body's Lock/Unlock calls and MemBudget
// entry-point calls. Deferred unlocks are dropped, which models the
// mutex as held to the end of the body.
func collectLockEvents(pass *analysis.Pass, body *ast.BlockStmt) []lockEvent {
	var events []lockEvent
	deferred := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			deferred[d.Call] = true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Lock", "RLock":
			if !deferred[call] {
				events = append(events, lockEvent{pos: call.Pos(), kind: "lock", mutex: exprString(sel.X)})
			}
		case "Unlock", "RUnlock":
			if !deferred[call] {
				events = append(events, lockEvent{pos: call.Pos(), kind: "unlock", mutex: exprString(sel.X)})
			}
		default:
			if budgetEntryPoints[sel.Sel.Name] {
				if tv, ok := pass.TypesInfo.Types[sel.X]; ok && namedTypeName(tv.Type) == "MemBudget" {
					events = append(events, lockEvent{pos: call.Pos(), kind: "budget", method: sel.Sel.Name})
				}
			}
		}
		return true
	})
	return events
}

// exprString renders a selector chain ("s.mu", "c.store.mu") for use
// as a mutex identity key. Non-chain expressions render as "<expr>",
// which still participates in held tracking.
func exprString(e ast.Expr) string {
	var parts []string
	for {
		switch x := e.(type) {
		case *ast.Ident:
			parts = append(parts, x.Name)
		case *ast.SelectorExpr:
			parts = append(parts, x.Sel.Name)
			e = x.X
			continue
		case *ast.ParenExpr:
			e = x.X
			continue
		default:
			parts = append(parts, "<expr>")
		}
		break
	}
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	return strings.Join(parts, ".")
}
