package analyzers

import (
	"go/ast"
	"go/token"

	"maskedspgemm/tools/mspgemmlint/analysis"
)

// Nilsafetoken pins PR 9's hook contract: cancellation tokens and
// fault-injection hooks are passed around as possibly-nil pointers,
// and every call site relies on the methods themselves being safe on a
// nil receiver. Types opt in with //mspgemm:nilsafe; the analyzer then
// requires every pointer-receiver method that dereferences the
// receiver to compare it against nil first. Both the statement form
// (if t == nil { return }) and the short-circuit form (return t != nil
// && t.flag.Load()) satisfy the check, because the comparison precedes
// the first dereference in source order.
var Nilsafetoken = &analysis.Analyzer{
	Name: "nilsafetoken",
	Doc: "require //mspgemm:nilsafe types' pointer-receiver methods to " +
		"nil-check the receiver before using it (nil-safe hooks, PR 9)",
	Run: runNilsafetoken,
}

func runNilsafetoken(pass *analysis.Pass) error {
	nilsafe := annotatedTypes(pass.Files, DirNilsafe)
	if len(nilsafe) == 0 {
		return nil
	}
	forEachFunc(pass, func(_ *ast.File, fd *ast.FuncDecl) {
		if fd.Body == nil || fd.Recv == nil || len(fd.Recv.List) != 1 {
			return
		}
		// Only pointer receivers can be nil; value-receiver methods on a
		// nil pointer already panic at the call site.
		star, ok := fd.Recv.List[0].Type.(*ast.StarExpr)
		if !ok {
			return
		}
		base := star.X
		if idx, ok := base.(*ast.IndexExpr); ok {
			base = idx.X
		}
		id, ok := base.(*ast.Ident)
		if !ok || !nilsafe[id.Name] {
			return
		}
		recv := receiverName(fd)
		if recv == "" || recv == "_" {
			return
		}
		firstUse := firstReceiverDeref(fd.Body, recv)
		if firstUse == token.NoPos {
			return
		}
		if guard := firstReceiverNilCheck(fd.Body, recv); guard == token.NoPos || guard > firstUse {
			pass.Reportf(firstUse,
				"method (*%s).%s dereferences the receiver without a nil check; //mspgemm:nilsafe types must keep every method safe on a nil receiver (PR 9)",
				id.Name, fd.Name.Name)
		}
	})
	return nil
}

// firstReceiverDeref returns the position of the first selector or
// explicit dereference through the named receiver, or NoPos.
func firstReceiverDeref(body *ast.BlockStmt, recv string) token.Pos {
	first := token.NoPos
	ast.Inspect(body, func(n ast.Node) bool {
		if first != token.NoPos {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if id, ok := n.X.(*ast.Ident); ok && id.Name == recv {
				first = n.Pos()
				return false
			}
		case *ast.StarExpr:
			if id, ok := n.X.(*ast.Ident); ok && id.Name == recv {
				first = n.Pos()
				return false
			}
		}
		return true
	})
	return first
}

// firstReceiverNilCheck returns the position of the first receiver ==
// nil or receiver != nil comparison, or NoPos.
func firstReceiverNilCheck(body *ast.BlockStmt, recv string) token.Pos {
	first := token.NoPos
	ast.Inspect(body, func(n ast.Node) bool {
		if first != token.NoPos {
			return false
		}
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		if isIdentNamed(be.X, recv) && isNilIdent(be.Y) || isIdentNamed(be.Y, recv) && isNilIdent(be.X) {
			first = be.Pos()
			return false
		}
		return true
	})
	return first
}

// isIdentNamed reports whether e is the identifier name.
func isIdentNamed(e ast.Expr, name string) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == name
}

// isNilIdent reports whether e is the predeclared nil.
func isNilIdent(e ast.Expr) bool {
	return isIdentNamed(e, "nil")
}
