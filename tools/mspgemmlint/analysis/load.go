package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// The loader type-checks the module's packages with nothing but the
// standard library: `go list -export -deps -json` yields every
// package's compiled export data (the go command has already built the
// module to produce it), the target packages' sources are parsed for
// analysis, and their imports resolve through go/importer's gc reader
// pointed at those export files. This is the same export-data diet
// x/tools' unitchecker runs on under `go vet`, reproduced here so the
// standalone driver needs no module dependencies.

// Package is one loaded, type-checked module package ready for
// analyzers.
type Package struct {
	// ImportPath is the package's import path ("maskedspgemm/internal/core").
	ImportPath string
	// Dir is the package's source directory.
	Dir string
	// Fset maps positions for Files.
	Fset *token.FileSet
	// Files are the parsed non-test sources, comments included.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info carries the type-checker's recorded facts for Files.
	Info *types.Info
}

// listedPkg is the subset of `go list -json` output the loader needs.
type listedPkg struct {
	// ImportPath is the canonical import path.
	ImportPath string
	// Dir is the package source directory.
	Dir string
	// Export is the compiled export-data file (present under -export).
	Export string
	// GoFiles are the non-test sources relative to Dir.
	GoFiles []string
	// DepOnly marks packages listed only as dependencies of the
	// named patterns.
	DepOnly bool
	// Standard marks GOROOT packages.
	Standard bool
	// Error carries the package's load error, if any.
	Error *struct {
		// Err is the go command's error text.
		Err string
	}
}

// Load lists patterns in dir (the module root), parses and type-checks
// every matched module package, and returns them in listing order.
// Dependencies — standard library and module-internal alike — are
// imported from compiled export data, so only the analyzed sources are
// type-checked from scratch.
func Load(dir string, patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, lp := range listed {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
	}
	fset := token.NewFileSet()
	imp := ExportImporter(fset, func(path string) (string, bool) {
		f, ok := exports[path]
		return f, ok
	})
	var pkgs []*Package
	for _, lp := range listed {
		if lp.DepOnly || lp.Standard {
			continue
		}
		p, err := typecheckDir(fset, lp, imp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// goList runs `go list -export -deps -json` and decodes the stream.
func goList(dir string, patterns []string) ([]listedPkg, error) {
	args := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var listed []listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listedPkg
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		listed = append(listed, lp)
	}
	return listed, nil
}

// ExportImporter returns a types importer that resolves import paths
// through lookup to compiled export-data files and reads them with the
// standard gc importer. Both the standalone loader and the vettool
// mode feed it their respective path→file maps.
func ExportImporter(fset *token.FileSet, lookup func(path string) (string, bool)) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := lookup(path)
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
}

// NewTypesInfo allocates the types.Info map set analyzers rely on.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// typecheckDir parses and type-checks one listed package from source.
func typecheckDir(fset *token.FileSet, lp listedPkg, imp types.Importer) (*Package, error) {
	files, err := ParseFiles(fset, lp.Dir, lp.GoFiles)
	if err != nil {
		return nil, err
	}
	info := NewTypesInfo()
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", lp.ImportPath, err)
	}
	return &Package{
		ImportPath: lp.ImportPath,
		Dir:        lp.Dir,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		Info:       info,
	}, nil
}

// ParseFiles parses the named files of one package directory with
// comments retained.
func ParseFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		path := name
		if dir != "" && !filepath.IsAbs(name) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// Finding is one rendered diagnostic: an analyzer name, a position,
// and the message.
type Finding struct {
	// Analyzer names the analyzer that reported.
	Analyzer string
	// Pos is the rendered file:line:column.
	Pos token.Position
	// Message is the diagnostic text.
	Message string
}

// String renders the conventional "pos: [analyzer] message" line.
func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// RunAnalyzers applies every analyzer to every package and returns the
// findings sorted by position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Pkg,
				TypesInfo: pkg.Info,
			}
			pass.Report = func(d Diagnostic) {
				findings = append(findings, Finding{
					Analyzer: a.Name,
					Pos:      pkg.Fset.Position(d.Pos),
					Message:  d.Message,
				})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.ImportPath, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}
