// Package analysistest runs one analyzer over a fixture package and
// checks its diagnostics against // want comments, mirroring
// x/tools/go/analysis/analysistest for the dependency-free framework.
//
// Fixtures live under <testdata>/src/<pkgname>/*.go. A line expecting
// diagnostics carries a trailing comment of quoted regular
// expressions:
//
//	p.sched = s // want `write to field sched`
//	bad()       // want "first" "second"
//
// Every reported diagnostic must match a same-line expectation and
// every expectation must be matched, so fixtures prove both that an
// analyzer fires on violations and that it stays quiet on the
// surrounding negative cases.
package analysistest

import (
	"bytes"
	"encoding/json"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"maskedspgemm/tools/mspgemmlint/analysis"
)

// Run loads <testdata>/src/<pkg>, applies the analyzer, and reports
// every mismatch between diagnostics and // want expectations as a
// test error.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkg string) {
	t.Helper()
	dir := filepath.Join(testdata, "src", pkg)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}
	fset := token.NewFileSet()
	files, err := analysis.ParseFiles(fset, dir, names)
	if err != nil {
		t.Fatalf("parsing fixtures: %v", err)
	}
	info := analysis.NewTypesInfo()
	conf := types.Config{Importer: stdImporter(fset)}
	tpkg, err := conf.Check(pkg, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixtures: %v", err)
	}
	findings, err := analysis.RunAnalyzers([]*analysis.Package{{
		ImportPath: pkg,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Pkg:        tpkg,
		Info:       info,
	}}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	checkExpectations(t, fset, files, findings)
}

// expectation is one // want regex with its match state.
type expectation struct {
	// rx is the compiled pattern.
	rx *regexp.Regexp
	// matched flips when a diagnostic consumes the expectation.
	matched bool
}

// checkExpectations pairs findings with same-line // want patterns.
func checkExpectations(t *testing.T, fset *token.FileSet, files []*ast.File, findings []analysis.Finding) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*expectation)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				patterns, ok := parseWant(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				k := key{file: pos.Filename, line: pos.Line}
				for _, p := range patterns {
					rx, err := regexp.Compile(p)
					if err != nil {
						t.Errorf("%s: bad // want pattern %q: %v", pos, p, err)
						continue
					}
					wants[k] = append(wants[k], &expectation{rx: rx})
				}
			}
		}
	}
	for _, f := range findings {
		k := key{file: f.Pos.Filename, line: f.Pos.Line}
		consumed := false
		for _, w := range wants[k] {
			if !w.matched && w.rx.MatchString(f.Message) {
				w.matched = true
				consumed = true
				break
			}
		}
		if !consumed {
			t.Errorf("%s: unexpected diagnostic: %s", f.Pos, f.Message)
		}
	}
	for k, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: no diagnostic matched pattern %q", k.file, k.line, w.rx)
			}
		}
	}
}

// parseWant extracts the quoted patterns from a "// want ..." comment.
// The marker may be embedded ("//mspgemm:typo // want ..."), so
// expectations can ride on directive lines too.
func parseWant(text string) ([]string, bool) {
	const marker = "// want "
	i := strings.Index(text, marker)
	if i < 0 {
		return nil, false
	}
	rest := strings.TrimSpace(text[i+len(marker):])
	var patterns []string
	for rest != "" {
		quote := rest[0]
		if quote != '"' && quote != '`' {
			return nil, false
		}
		end := strings.IndexByte(rest[1:], quote)
		if end < 0 {
			return nil, false
		}
		patterns = append(patterns, rest[1:1+end])
		rest = strings.TrimSpace(rest[2+end:])
	}
	return patterns, len(patterns) > 0
}

// stdImporter resolves fixture imports to standard-library export
// data, located once per path via `go list -export -json` and memoized
// for the process.
func stdImporter(fset *token.FileSet) types.Importer {
	return analysis.ExportImporter(fset, lookupStdExport)
}

// stdExports memoizes export-data paths by import path.
var stdExports = map[string]string{}

// lookupStdExport locates one package's compiled export data.
func lookupStdExport(path string) (string, bool) {
	if f, ok := stdExports[path]; ok {
		return f, f != ""
	}
	cmd := exec.Command("go", "list", "-export", "-deps", "-json", path)
	var out bytes.Buffer
	cmd.Stdout = &out
	if err := cmd.Run(); err != nil {
		stdExports[path] = ""
		return "", false
	}
	dec := json.NewDecoder(&out)
	for {
		var lp struct {
			// ImportPath keys the memo.
			ImportPath string
			// Export is the compiled export-data file.
			Export string
		}
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			stdExports[path] = ""
			return "", false
		}
		stdExports[lp.ImportPath] = lp.Export
	}
	f, ok := stdExports[path]
	if !ok {
		stdExports[path] = ""
	}
	return f, ok && f != ""
}
