// Package analysis is a dependency-free miniature of
// golang.org/x/tools/go/analysis: just enough of the Analyzer/Pass
// protocol for mspgemmlint's invariant suite to be written in the
// standard shape. The build environment bakes in no third-party
// modules, so the real x/tools framework is not importable here; the
// API mirrors it field for field, so migrating the analyzers onto
// x/tools later is a matter of changing one import path.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one invariant checker: a name for diagnostics and
// driver flags, a doc string, and the Run function applied once per
// loaded package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and CLI selection. By
	// convention a short lowercase word ("planimmut").
	Name string
	// Doc is the one-paragraph description printed by the driver's help
	// and prefixed to fixture failures.
	Doc string
	// Run applies the analyzer to one package. Diagnostics flow through
	// pass.Report; the error return is for operational failures only
	// (a failed Run aborts the drive, a diagnostic does not).
	Run func(pass *Pass) error
}

// Pass carries one package's load results to an analyzer Run.
type Pass struct {
	// Analyzer is the analyzer being applied.
	Analyzer *Analyzer
	// Fset maps token positions of Files to file/line/column.
	Fset *token.FileSet
	// Files are the package's parsed source files, comments included.
	// Test files (*_test.go) are included only when the driver was asked
	// to load them; the repo-contract analyzers skip them by name.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo records the type-checker's expression and object facts.
	TypesInfo *types.Info
	// Report delivers one diagnostic. Never nil.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding: a position and a message. The analyzer
// name is attached by the driver.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Pos
	// Message states the violated invariant and, where useful, the fix.
	Message string
}

// IsTestFile reports whether the file's position name ends in
// _test.go. The repo-contract analyzers enforce production invariants
// and skip test files, mirroring the doc linter they rode in with.
func IsTestFile(fset *token.FileSet, f *ast.File) bool {
	name := fset.Position(f.Package).Filename
	const suffix = "_test.go"
	return len(name) >= len(suffix) && name[len(name)-len(suffix):] == suffix
}
