package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/token"
	"go/types"
	"os"
	"strings"
)

// Vettool mode: when the binary is invoked by `go vet -vettool=`, the
// go command drives it one package at a time with a JSON config file,
// mirroring x/tools' unitchecker protocol. Only the subset of the
// protocol the go command actually exercises is implemented: the
// -V=full version handshake, the -flags query, and per-package .cfg
// runs with export-data-based import resolution.

// vetConfig is the unitchecker-compatible config the go command writes
// next to each package's build artifacts.
type vetConfig struct {
	// ID is the package's build ID.
	ID string
	// ImportPath is the package's canonical import path.
	ImportPath string
	// GoFiles are the absolute paths of the package's sources.
	GoFiles []string
	// NonGoFiles lists assembly and other non-Go inputs (unused).
	NonGoFiles []string
	// ImportMap maps source import paths to canonical ones.
	ImportMap map[string]string
	// PackageFile maps canonical import paths to export-data files.
	PackageFile map[string]string
	// Standard marks stdlib packages present in the build.
	Standard map[string]bool
	// VetxOnly means the go command wants only facts, no diagnostics.
	VetxOnly bool
	// VetxOutput is the path where the facts file must be written.
	VetxOutput string
	// SucceedOnTypecheckFailure asks for exit 0 on broken packages.
	SucceedOnTypecheckFailure bool
}

// vetDiagnostic is the JSON shape `go vet -json` prints per finding.
type vetDiagnostic struct {
	// Posn is the file:line:column of the finding.
	Posn string `json:"posn"`
	// Message is the diagnostic text.
	Message string `json:"message"`
}

// VetMain handles a `go vet -vettool=` invocation and returns the
// process exit code. args are the program arguments after the binary
// name. It returns ok=false when the invocation is not a vettool
// protocol call (no -V/-flags/*.cfg argument), letting the caller fall
// through to the standalone CLI.
func VetMain(args []string, analyzers []*Analyzer) (code int, ok bool) {
	jsonOut := false
	var cfgFile string
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "-V":
			// The go command keys its vet cache on this line and insists
			// on a buildID field; hashing the executable makes rebuilds
			// invalidate cached results, as unitchecker does.
			fmt.Printf("mspgemmlint version devel buildID=%s\n", selfBuildID())
			return 0, true
		case a == "-flags":
			// No analyzer flags are exposed; report an empty set.
			fmt.Println("[]")
			return 0, true
		case a == "-json" || a == "-json=true":
			jsonOut = true
		case strings.HasSuffix(a, ".cfg"):
			cfgFile = a
		}
	}
	if cfgFile == "" {
		return 0, false
	}
	if err := vetPackage(cfgFile, jsonOut, analyzers); err != nil {
		if err == errFindings {
			return 2, true
		}
		fmt.Fprintln(os.Stderr, "mspgemmlint:", err)
		return 1, true
	}
	return 0, true
}

// errFindings signals diagnostics were printed; the driver exits 2
// without further output.
var errFindings = fmt.Errorf("findings reported")

// selfBuildID hashes the running executable into the -V=full build ID.
func selfBuildID() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		return "unknown"
	}
	sum := sha256.Sum256(data)
	return fmt.Sprintf("%02x", sum[:16])
}

// vetPackage runs the analyzers over the one package described by the
// config file.
func vetPackage(cfgFile string, jsonOut bool, analyzers []*Analyzer) error {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return fmt.Errorf("parsing %s: %v", cfgFile, err)
	}
	// The go command insists on a facts file even though this suite
	// exports no facts; an empty one satisfies it.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return err
		}
	}
	if cfg.VetxOnly {
		return nil
	}
	fset := token.NewFileSet()
	files, err := ParseFiles(fset, "", cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil
		}
		return err
	}
	imp := ExportImporter(fset, func(path string) (string, bool) {
		if canon, ok := cfg.ImportMap[path]; ok {
			path = canon
		}
		f, ok := cfg.PackageFile[path]
		return f, ok
	})
	info := NewTypesInfo()
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil
		}
		return fmt.Errorf("type-checking %s: %v", cfg.ImportPath, err)
	}
	findings, err := RunAnalyzers([]*Package{{
		ImportPath: cfg.ImportPath,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		Info:       info,
	}}, analyzers)
	if err != nil {
		return err
	}
	if len(findings) == 0 {
		return nil
	}
	if jsonOut {
		printVetJSON(cfg.ImportPath, findings)
		// JSON mode reports findings as data, not as an error exit.
		return nil
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	return errFindings
}

// printVetJSON prints findings in `go vet -json`'s nested map shape:
// {importpath: {analyzer: [diagnostics]}}.
func printVetJSON(importPath string, findings []Finding) {
	byAnalyzer := make(map[string][]vetDiagnostic)
	for _, f := range findings {
		byAnalyzer[f.Analyzer] = append(byAnalyzer[f.Analyzer], vetDiagnostic{
			Posn:    f.Pos.String(),
			Message: f.Message,
		})
	}
	out := map[string]map[string][]vetDiagnostic{importPath: byAnalyzer}
	data, err := json.MarshalIndent(out, "", "\t")
	if err != nil {
		fmt.Fprintln(os.Stderr, "mspgemmlint:", err)
		return
	}
	os.Stdout.Write(append(data, '\n'))
}
