package bce

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// fixtureMod writes a one-package module whose hot function carries
// the given body and returns the module directory.
func fixtureMod(t *testing.T, body string) string {
	t.Helper()
	dir := t.TempDir()
	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module bcefixture\n\ngo 1.24\n")
	write("kernel.go", `// Package bcefixture exercises the BCE drift gate.
package bcefixture

// gather is the audited hot loop.
//
//mspgemm:hotpath
func gather(dst, src []int32, perm []int) int {
`+body+`}
`)
	return dir
}

// flatBody compiles without bounds checks: the manifest baseline.
const flatBody = `	n := 0
	for i := range dst {
		dst[i] = 0
		n++
	}
	return n
`

// checkedBody adds a permuted gather the compiler cannot prove in
// bounds: the synthetic drift.
const checkedBody = `	n := 0
	for i := range dst {
		dst[i] = src[perm[i]]
		n++
	}
	return n
`

func TestWriteThenClean(t *testing.T) {
	dir := fixtureMod(t, flatBody)
	manifest := filepath.Join(dir, "bce.manifest")
	report, ok, err := Run(dir, []string{"."}, manifest, true)
	if err != nil {
		t.Fatalf("write: %v", err)
	}
	if !ok {
		t.Fatalf("write reported drift: %s", report)
	}
	report, ok, err = Run(dir, []string{"."}, manifest, false)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if !ok {
		t.Fatalf("clean build reported drift: %s", report)
	}
	if !strings.Contains(report, "no drift") {
		t.Fatalf("unexpected clean report: %s", report)
	}
}

func TestNewCheckInHotFunctionFails(t *testing.T) {
	dir := fixtureMod(t, flatBody)
	manifest := filepath.Join(dir, "bce.manifest")
	if _, _, err := Run(dir, []string{"."}, manifest, true); err != nil {
		t.Fatalf("write: %v", err)
	}
	// Inject the synthetic bounds check and re-run the gate.
	dir2 := fixtureMod(t, checkedBody)
	report, ok, err := Run(dir2, []string{"."}, manifest, false)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if ok {
		t.Fatalf("gate passed despite injected bounds check: %s", report)
	}
	for _, wantFrag := range []string{
		"//mspgemm:hotpath function gather",
		"kernel.go",
		"Found IsInBounds",
	} {
		if !strings.Contains(report, wantFrag) {
			t.Errorf("report missing %q:\n%s", wantFrag, report)
		}
	}
	// The report must carry the offending source position (file:line:col).
	if !regexp.MustCompile(`kernel\.go:\d+:\d+: Found IsInBounds`).MatchString(report) {
		t.Errorf("report missing offending position:\n%s", report)
	}
}

func TestRemovedCheckReportsStaleManifest(t *testing.T) {
	dir := fixtureMod(t, checkedBody)
	manifest := filepath.Join(dir, "bce.manifest")
	if _, _, err := Run(dir, []string{"."}, manifest, true); err != nil {
		t.Fatalf("write: %v", err)
	}
	dir2 := fixtureMod(t, flatBody)
	report, ok, err := Run(dir2, []string{"."}, manifest, false)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if ok {
		t.Fatalf("gate passed with a stale manifest: %s", report)
	}
	if !strings.Contains(report, "stale") || !strings.Contains(report, "-write") {
		t.Errorf("report should ask for regeneration:\n%s", report)
	}
}

func TestManifestMissing(t *testing.T) {
	dir := fixtureMod(t, flatBody)
	if _, _, err := Run(dir, []string{"."}, filepath.Join(dir, "absent.manifest"), false); err == nil {
		t.Fatal("expected an error for a missing manifest")
	}
}
