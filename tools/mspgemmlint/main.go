// Command mspgemmlint enforces the repo's machine-checkable invariants:
// plan immutability (DESIGN §8), the plan-affecting/exec-only options
// split (PR 5), the budget-above-member lock order (PR 7), the
// //mspgemm:hotpath flat-loop contract (PR 6), nil-safe cancellation
// and fault hooks (PR 9), and doc coverage (formerly tools/lintdoc).
//
// Usage:
//
//	go run ./tools/mspgemmlint [packages]        analyze packages (default ./...)
//	go run ./tools/mspgemmlint bce [-write]      diff residual bounds checks
//	                                             against tools/bce.manifest
//	go vet -vettool=$(which mspgemmlint) ./...   run under the go command
//
// Exit status: 0 clean, 1 findings or drift, 2 operational error.
package main

import (
	"flag"
	"fmt"
	"os"

	"maskedspgemm/tools/mspgemmlint/analysis"
	"maskedspgemm/tools/mspgemmlint/analyzers"
	"maskedspgemm/tools/mspgemmlint/bce"
)

func main() {
	// `go vet -vettool=` drives the binary with -V/-flags/*.cfg
	// arguments; everything else falls through to the standalone CLI.
	if code, ok := analysis.VetMain(os.Args[1:], analyzers.All); ok {
		os.Exit(code)
	}
	args := os.Args[1:]
	if len(args) > 0 && args[0] == "bce" {
		os.Exit(bceMain(args[1:]))
	}
	os.Exit(lintMain(args))
}

// lintMain runs the analyzer suite over the module packages and prints
// findings one per line.
func lintMain(patterns []string) int {
	fs := flag.NewFlagSet("mspgemmlint", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: mspgemmlint [packages] | mspgemmlint bce [-write] [packages]")
		fmt.Fprintln(os.Stderr, "analyzers:")
		for _, a := range analyzers.All {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	if err := fs.Parse(patterns); err != nil {
		return 2
	}
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mspgemmlint:", err)
		return 2
	}
	pkgs, err := analysis.Load(dir, fs.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "mspgemmlint:", err)
		return 2
	}
	findings, err := analysis.RunAnalyzers(pkgs, analyzers.All)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mspgemmlint:", err)
		return 2
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "mspgemmlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// bceMain runs the bounds-check drift gate.
func bceMain(args []string) int {
	fs := flag.NewFlagSet("mspgemmlint bce", flag.ExitOnError)
	write := fs.Bool("write", false, "regenerate the manifest from the current build")
	manifest := fs.String("manifest", bce.DefaultManifest, "manifest path relative to the module root")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mspgemmlint:", err)
		return 2
	}
	report, ok, err := bce.Run(dir, fs.Args(), *manifest, *write)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mspgemmlint:", err)
		return 2
	}
	fmt.Print(report)
	if !ok {
		return 1
	}
	return 0
}
