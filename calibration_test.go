package maskedspgemm

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"maskedspgemm/internal/sparse"
)

// TestCalibrationModeParse pins the flag spellings both ways.
func TestCalibrationModeParse(t *testing.T) {
	for _, c := range []struct {
		in   string
		want CalibrationMode
	}{
		{"off", CalibrateOff},
		{"", CalibrateOff},
		{"startup", CalibrateStartup},
		{"online", CalibrateOnline},
	} {
		got, err := ParseCalibrationMode(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseCalibrationMode(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
	if _, err := ParseCalibrationMode("sometimes"); err == nil {
		t.Error("ParseCalibrationMode accepted an unknown mode")
	}
	for _, m := range []CalibrationMode{CalibrateOff, CalibrateStartup, CalibrateOnline} {
		back, err := ParseCalibrationMode(m.String())
		if err != nil || back != m {
			t.Errorf("round trip of %v: got %v, %v", m, back, err)
		}
	}
}

// TestSessionCalibrateOffParity is the -calibrate=off acceptance
// criterion at the session level: an explicitly-off session runs no
// fit, injects nothing, and its results are bit-for-bit the default
// session's (which are themselves pinned against package Multiply by
// TestSessionMatchesMultiply).
func TestSessionCalibrateOffParity(t *testing.T) {
	plain := NewSession()
	off := NewSession(WithCalibration(CalibrationConfig{Mode: CalibrateOff}))
	eq := func(x, y float64) bool { return x == y }
	for _, g := range sessionGraphs() {
		for _, algo := range []Algorithm{MSA, Hybrid} {
			want, err := plain.Multiply(g.PatternView(), g, g, WithAlgorithm(algo))
			if err != nil {
				t.Fatal(err)
			}
			got, err := off.Multiply(g.PatternView(), g, g, WithAlgorithm(algo))
			if err != nil {
				t.Fatal(err)
			}
			if !sparse.EqualFunc(want, got, eq) {
				t.Fatalf("algo %v: calibrate=off result differs from default session", algo)
			}
		}
	}
	st := off.Stats().Calibration
	if st.Mode != "off" || st.FitNanos != 0 || st.Coefficients != nil || st.Replans != 0 {
		t.Errorf("calibrate=off stats = %+v, want inert block", st)
	}
}

// TestSessionCalibrateStartup: the fit runs once at construction
// (bounded, off the request path), its coefficients surface in Stats,
// and calibrated serving still computes the exact product.
func TestSessionCalibrateStartup(t *testing.T) {
	t0 := time.Now()
	s := NewSession(WithCalibration(CalibrationConfig{Mode: CalibrateStartup}))
	if boot := time.Since(t0); boot > 30*time.Second {
		t.Fatalf("startup fit took %v", boot)
	}
	eq := func(x, y float64) bool { return x == y }
	for _, g := range sessionGraphs() {
		want, err := Multiply(g.PatternView(), g, g, WithAlgorithm(Hybrid))
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.Multiply(g.PatternView(), g, g, WithAlgorithm(Hybrid))
		if err != nil {
			t.Fatal(err)
		}
		if !sparse.EqualFunc(want, got, eq) {
			t.Fatal("calibrated session computes a different product")
		}
	}
	st := s.Stats().Calibration
	if st.Mode != "startup" {
		t.Errorf("mode = %q", st.Mode)
	}
	if st.FitNanos <= 0 {
		t.Errorf("FitNanos = %d, want > 0", st.FitNanos)
	}
	if len(st.Coefficients) == 0 {
		t.Skip("host too noisy to fit even MSA; coefficient surfacing untestable here")
	}
	if msa := st.Coefficients["MSA"]; msa != 1.0 {
		t.Errorf("MSA coefficient = %v, want the 1.0 anchor", msa)
	}
	for fam, c := range st.Coefficients {
		if c <= 0 {
			t.Errorf("family %s: coefficient %v not positive", fam, c)
		}
	}
	// Warming keys like serving: a warmed structure must hit.
	g := ErdosRenyi(200, 6, 9)
	if err := s.Warm(g.PatternView(), g, g, WithAlgorithm(Hybrid)); err != nil {
		t.Fatal(err)
	}
	before := s.Stats().Cache
	if _, err := s.Multiply(g.PatternView(), g, g, WithAlgorithm(Hybrid)); err != nil {
		t.Fatal(err)
	}
	after := s.Stats().Cache
	if after.Hits != before.Hits+1 {
		t.Errorf("warmed structure missed under startup calibration: %+v → %+v", before, after)
	}
}

// TestSessionOnlineReplan is the serving-level K-hit story: an online
// session observes every execution, and a plan whose measured
// imbalance EWMA stays over threshold for K consecutive hits is
// re-bound in the background and swapped — subsequent requests execute
// the swapped plan and still get the exact product. The launcher is
// made synchronous and the threshold sits below 1.0 (any parallel pass
// with participants measures imbalance ≥ 1.0), so the test is
// deterministic with no sleeps.
func TestSessionOnlineReplan(t *testing.T) {
	s := NewSession(WithCalibration(CalibrationConfig{
		Mode:               CalibrateOnline,
		ImbalanceThreshold: 0.99,
		ConsecutiveHits:    2,
	}))
	s.cache.SetReplanLauncher(func(job func()) { job() })

	g := ErdosRenyi(512, 8, 7)
	want, err := Multiply(g.PatternView(), g, g)
	if err != nil {
		t.Fatal(err)
	}
	eq := func(x, y float64) bool { return x == y }
	for i := 0; i < 8; i++ {
		got, err := s.Multiply(g.PatternView(), g, g, WithThreads(4))
		if err != nil {
			t.Fatal(err)
		}
		if !sparse.EqualFunc(want, got, eq) {
			t.Fatalf("request %d: wrong product", i)
		}
	}
	st := s.Stats().Calibration
	if st.Mode != "online" {
		t.Errorf("mode = %q", st.Mode)
	}
	if st.Replans == 0 {
		t.Error("8 over-threshold hits with K=2 triggered no re-bind")
	}
	if len(st.Drift) == 0 {
		t.Error("online session reports no drift records")
	}
	// Online mode keys plans literally — a request with explicit
	// options must not see coefficient-fragmented keys.
	if s.Stats().Cache.Misses != 1 {
		t.Errorf("misses = %d, want 1 (one structure, one key)", s.Stats().Cache.Misses)
	}
}

// TestSessionOnlineRefsAtomicity hammers MultiplyRefs from many
// goroutines while background re-binds (real goroutines, default
// launcher) swap the hot plan underneath them: every request must see
// a consistent plan and the exact product. Run under -race in CI.
func TestSessionOnlineRefsAtomicity(t *testing.T) {
	s := NewSession(WithCalibration(CalibrationConfig{
		Mode:               CalibrateOnline,
		ImbalanceThreshold: 0.99,
		ConsecutiveHits:    2,
	}))
	g := ErdosRenyi(512, 8, 11)
	ref, _ := s.PutOperand(g)
	want, err := Multiply(g.PatternView(), g, g)
	if err != nil {
		t.Fatal(err)
	}
	eq := func(x, y float64) bool { return x == y }

	const workers = 4
	const iters = 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				got, err := s.MultiplyRefs(ref.Pattern, ref, ref, WithThreads(4))
				if err != nil {
					errs <- err
					return
				}
				if !sparse.EqualFunc(want, got, eq) {
					errs <- fmt.Errorf("iteration %d: wrong product during background re-bind", i)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if s.Stats().Calibration.Replans == 0 {
		t.Error("sustained over-threshold traffic triggered no re-bind")
	}
}
