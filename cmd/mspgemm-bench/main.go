// Command mspgemm-bench regenerates the paper's evaluation artifacts
// (Figures 7–16) on synthetic workloads, plus the scheduler-skew
// experiment of DESIGN.md §9 and the per-row poly-algorithm
// experiment of DESIGN.md §10. Each figure is a subcommand; "all"
// runs everything at the default (CI-scale) sizes; "sched" runs the
// scheduling sweep (BENCH_sched.json), "hybridmix" the mask-density
// mixed-binding sweep (BENCH_hybridmix.json), "bitmap" the MaskedBit
// accumulator experiment (BENCH_bitmap.json), "calibrate" the
// static-vs-calibrated cost-model experiment (BENCH_calibrate.json)
// for the perf trajectory, and "cancel" the cancel-token polling
// overhead experiment (BENCH_cancel.json) behind the fault-containment
// CI gate.
//
// Usage:
//
//	mspgemm-bench [flags] fig7|fig8|fig9|fig10|fig11|fig12|fig13|fig14|fig15|fig16|sched|hybridmix|bitmap|calibrate|cancel|all
//
// Flags:
//
//	-threads N        worker goroutines (default GOMAXPROCS)
//	-reps N           timing repetitions per point (default 3)
//	-scale-max N      cap on R-MAT/ER scales (default 13; paper used 20)
//	-batch N          betweenness-centrality batch size (default 64; paper 512)
//	-dim N            Fig-7 matrix dimension exponent (default 12, i.e. 2^12)
//	-ktruss N         truss order k (default 5)
//	-sched-out F      where "sched" writes its JSON (default BENCH_sched.json)
//	-hybridmix-out F  where "hybridmix" writes its JSON (default BENCH_hybridmix.json)
//	-bitmap-out F     where "bitmap" writes its JSON (default BENCH_bitmap.json)
//	-calibrate-out F  where "calibrate" writes its JSON (default BENCH_calibrate.json)
//	-cancel-out F     where "cancel" writes its JSON (default BENCH_cancel.json)
//	-selftest         cross-check all schemes before benchmarking
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"maskedspgemm/internal/bench"
	"maskedspgemm/internal/gen"
)

func main() {
	var (
		threads  = flag.Int("threads", 0, "worker goroutines (0 = GOMAXPROCS)")
		reps     = flag.Int("reps", 3, "timing repetitions per point")
		scaleMax = flag.Int("scale-max", 13, "largest R-MAT/ER scale used")
		batch    = flag.Int("batch", 64, "BC source batch size")
		dimExp   = flag.Int("dim", 12, "Fig-7 dimension exponent (2^dim)")
		ktrussK  = flag.Int("ktruss", 5, "k-truss order")
		schedOut = flag.String("sched-out", "BENCH_sched.json", "output path for the sched subcommand's JSON")
		mixOut   = flag.String("hybridmix-out", "BENCH_hybridmix.json", "output path for the hybridmix subcommand's JSON")
		bitOut   = flag.String("bitmap-out", "BENCH_bitmap.json", "output path for the bitmap subcommand's JSON")
		calOut   = flag.String("calibrate-out", "BENCH_calibrate.json", "output path for the calibrate subcommand's JSON")
		cancOut  = flag.String("cancel-out", "BENCH_cancel.json", "output path for the cancel subcommand's JSON")
		selftest = flag.Bool("selftest", false, "run the cross-scheme self-test first")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mspgemm-bench [flags] fig7|...|fig16|sched|hybridmix|bitmap|calibrate|cancel|all")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if *selftest {
		if err := bench.CheckCorrectness(*threads); err != nil {
			fmt.Fprintln(os.Stderr, "self-test failed:", err)
			os.Exit(1)
		}
		fmt.Println("self-test: all schemes agree")
	}
	r := runner{
		threads:  *threads,
		reps:     *reps,
		scaleMax: *scaleMax,
		batch:    *batch,
		dimExp:   *dimExp,
		ktrussK:  *ktrussK,
		schedOut: *schedOut,
		mixOut:   *mixOut,
		bitOut:   *bitOut,
		calOut:   *calOut,
		cancOut:  *cancOut,
	}
	figure := flag.Arg(0)
	var err error
	if figure == "all" {
		for _, f := range []string{"fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16"} {
			if err = r.run(f); err != nil {
				break
			}
			fmt.Println()
		}
	} else {
		err = r.run(figure)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

type runner struct {
	threads, reps, scaleMax, batch, dimExp, ktrussK int
	schedOut, mixOut, bitOut, calOut, cancOut       string
}

// scales returns the R-MAT sweep 8..scaleMax (paper: 8..20).
func (r runner) scales() []int {
	var out []int
	for s := 8; s <= r.scaleMax; s++ {
		out = append(out, s)
	}
	return out
}

// threadsSweep returns 1,2,4,…,NumCPU for the strong-scaling figure.
func (r runner) threadsSweep() []int {
	maxT := runtime.GOMAXPROCS(0)
	var out []int
	for t := 1; t <= maxT; t *= 2 {
		out = append(out, t)
	}
	if out[len(out)-1] != maxT {
		out = append(out, maxT)
	}
	return out
}

func (r runner) run(figure string) error {
	w := os.Stdout
	switch figure {
	case "fig7":
		cfg := bench.DefaultFig7Config()
		cfg.Dim = 1 << r.dimExp
		cfg.Threads = r.threads
		cfg.Reps = r.reps
		cells, err := bench.RunFig7(cfg)
		if err != nil {
			return err
		}
		bench.WriteFig7(w, cfg, cells)
	case "fig8":
		p, err := bench.RunProfile(bench.ProfileConfig{
			App: bench.AppTriangleCount, Instances: gen.Suite(r.scaleMax),
			Schemes: bench.OurSchemes(), Threads: r.threads, Reps: r.reps,
		})
		if err != nil {
			return err
		}
		bench.WriteProfile(w, "Figure 8: Triangle Counting — our 12 variants (performance profile)", p)
	case "fig9":
		p, err := bench.RunProfile(bench.ProfileConfig{
			App: bench.AppTriangleCount, Instances: gen.Suite(r.scaleMax),
			Schemes: append(bench.BestThreeSchemes(), bench.BaselineSchemes()...),
			Threads: r.threads, Reps: r.reps,
		})
		if err != nil {
			return err
		}
		bench.WriteProfile(w, "Figure 9: Triangle Counting — ours vs SS:GB-style baselines", p)
	case "fig10":
		cfg := bench.ScaleSweepConfig{
			App: bench.AppTriangleCount, Scales: r.scales(),
			Schemes: append(bench.BestThreeSchemes(), bench.BaselineSchemes()...),
			Threads: r.threads, Reps: r.reps, Seed: 10,
		}
		pts, err := bench.RunScaleSweep(cfg)
		if err != nil {
			return err
		}
		bench.WriteScaleSweep(w, "Figure 10: Triangle Counting — GFLOPS vs R-MAT scale", "GFLOPS", cfg, pts)
	case "fig11":
		cfg := bench.ThreadSweepConfig{
			Scale: min(r.scaleMax, 14), Threads: r.threadsSweep(),
			Schemes: append(bench.BestThreeSchemes(), bench.BaselineSchemes()...),
			Reps:    r.reps, Seed: 11,
		}
		pts, err := bench.RunThreadSweep(cfg)
		if err != nil {
			return err
		}
		bench.WriteThreadSweep(w, fmt.Sprintf("Figure 11: Triangle Counting — strong scaling (R-MAT scale %d)", cfg.Scale), cfg, pts)
	case "fig12":
		p, err := bench.RunProfile(bench.ProfileConfig{
			App: bench.AppKTruss, Instances: gen.Suite(r.scaleMax),
			Schemes: bench.OurSchemes(), Threads: r.threads, Reps: r.reps, KTrussK: r.ktrussK,
		})
		if err != nil {
			return err
		}
		bench.WriteProfile(w, "Figure 12: k-truss — our variants (performance profile)", p)
	case "fig13":
		p, err := bench.RunProfile(bench.ProfileConfig{
			App: bench.AppKTruss, Instances: gen.Suite(r.scaleMax),
			Schemes: append(append([]bench.Scheme{}, bench.BestThreeSchemes()...), bench.BaselineSchemes()...),
			Threads: r.threads, Reps: r.reps, KTrussK: r.ktrussK,
		})
		if err != nil {
			return err
		}
		bench.WriteProfile(w, "Figure 13: k-truss — ours vs SS:GB-style baselines", p)
	case "fig14":
		cfg := bench.ScaleSweepConfig{
			App: bench.AppKTruss, Scales: r.scales(),
			Schemes: append(bench.BestThreeSchemes(), bench.BaselineSchemes()...),
			Threads: r.threads, Reps: r.reps, KTrussK: r.ktrussK, Seed: 14,
		}
		pts, err := bench.RunScaleSweep(cfg)
		if err != nil {
			return err
		}
		bench.WriteScaleSweep(w, "Figure 14: k-truss — GFLOPS vs R-MAT scale", "GFLOPS", cfg, pts)
	case "fig15":
		cfg := bench.ScaleSweepConfig{
			App: bench.AppBetweenness, Scales: r.scales(),
			Schemes: bench.ComplementSchemes(),
			Threads: r.threads, Reps: r.reps, BCBatch: r.batch, Seed: 15,
		}
		pts, err := bench.RunScaleSweep(cfg)
		if err != nil {
			return err
		}
		bench.WriteScaleSweep(w, "Figure 15: Betweenness Centrality — MTEPS vs R-MAT scale", "MTEPS", cfg, pts)
	case "fig16":
		schemes := append(bench.ComplementSchemes(), bench.BaselineSchemes()[0]) // + SS:SAXPY*
		p, err := bench.RunProfile(bench.ProfileConfig{
			App: bench.AppBetweenness, Instances: gen.SmallSuite(),
			Schemes: schemes, Threads: r.threads, Reps: r.reps, BCBatch: r.batch,
		})
		if err != nil {
			return err
		}
		bench.WriteProfile(w, "Figure 16: Betweenness Centrality — ours vs SS:SAXPY*", p)
	case "sched":
		cfg := bench.DefaultSchedSkewConfig()
		if r.scaleMax < cfg.Scale {
			cfg.Scale = r.scaleMax
		}
		cfg.Reps = r.reps
		cfg.Threads = r.threadsSweep()
		pts, err := bench.RunSchedSkew(cfg)
		if err != nil {
			return err
		}
		bench.WriteSchedSkew(w, cfg, pts)
		f, err := os.Create(r.schedOut)
		if err != nil {
			return err
		}
		if err := bench.WriteSchedJSON(f, cfg, pts); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", r.schedOut)
	case "hybridmix":
		cfg := bench.DefaultHybridMixConfig()
		if r.scaleMax < cfg.Scale {
			cfg.Scale = r.scaleMax
		}
		cfg.Reps = r.reps
		cfg.Threads = r.threads
		pts, err := bench.RunHybridMix(cfg)
		if err != nil {
			return err
		}
		bench.WriteHybridMix(w, cfg, pts)
		f, err := os.Create(r.mixOut)
		if err != nil {
			return err
		}
		if err := bench.WriteHybridMixJSON(f, cfg, pts); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", r.mixOut)
	case "bitmap":
		cfg := bench.DefaultBitmapMixConfig()
		if r.scaleMax < cfg.Scale {
			cfg.Scale = r.scaleMax
		}
		cfg.Reps = r.reps
		cfg.Threads = r.threads
		pts, err := bench.RunBitmapMix(cfg)
		if err != nil {
			return err
		}
		bench.WriteBitmapMix(w, cfg, pts)
		f, err := os.Create(r.bitOut)
		if err != nil {
			return err
		}
		if err := bench.WriteBitmapMixJSON(f, cfg, pts); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", r.bitOut)
	case "calibrate":
		cfg := bench.DefaultCalibrateBenchConfig()
		if r.scaleMax < cfg.Scale {
			cfg.Scale = r.scaleMax
		}
		cfg.Reps = r.reps
		cfg.Threads = r.threads
		pts, coeffs, err := bench.RunCalibrate(cfg)
		if err != nil {
			return err
		}
		bench.WriteCalibrate(w, cfg, coeffs, pts)
		f, err := os.Create(r.calOut)
		if err != nil {
			return err
		}
		if err := bench.WriteCalibrateJSON(f, cfg, coeffs, pts); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", r.calOut)
	case "cancel":
		cfg := bench.DefaultCancelOverheadConfig()
		if r.scaleMax < cfg.Scale {
			cfg.Scale = r.scaleMax
		}
		cfg.Reps = r.reps
		cfg.Threads = r.threads
		res, err := bench.RunCancelOverhead(cfg)
		if err != nil {
			return err
		}
		bench.WriteCancelOverhead(w, cfg, res)
		f, err := os.Create(r.cancOut)
		if err != nil {
			return err
		}
		if err := bench.WriteCancelOverheadJSON(f, cfg, res); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", r.cancOut)
	default:
		return fmt.Errorf("unknown figure %q", figure)
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
