// Command mspgemm-app runs one of the paper's benchmark applications —
// triangle counting, k-truss, or betweenness centrality — on a graph
// loaded from a Matrix Market file or generated on the fly, printing
// the result and the time spent in masked SpGEMM.
//
// Usage:
//
//	mspgemm-app -app tc|ktruss|bc [-input g.mtx | -rmat 14] [flags]
//
// Examples:
//
//	mspgemm-app -app tc -rmat 14 -algo msa
//	mspgemm-app -app ktruss -k 5 -input graph.mtx -algo hash -two-phase
//	mspgemm-app -app bc -rmat 12 -batch 128 -algo msa
//	mspgemm-app -app ktruss -rmat 12 -repeat 5   # served-traffic shape
//
// With -repeat > 1 the application is run repeatedly over the same
// prepared graph — the served-traffic shape — reusing plans and
// workspaces across runs; the k-truss path reports its plan-cache
// counters afterwards.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"maskedspgemm/internal/core"
	"maskedspgemm/internal/gen"
	"maskedspgemm/internal/graph"
	"maskedspgemm/internal/mtx"
	"maskedspgemm/internal/sparse"
	"maskedspgemm/internal/stats"
)

func main() {
	var (
		app       = flag.String("app", "tc", "application: tc, ktruss, bc, or bfs")
		input     = flag.String("input", "", "Matrix Market file (overrides -rmat)")
		rmat      = flag.Int("rmat", 12, "generate a symmetric R-MAT graph of this scale")
		ef        = flag.Int("ef", 16, "R-MAT edge factor")
		seed      = flag.Uint64("seed", 1, "generator seed")
		algo      = flag.String("algo", "msa", "algorithm: msa, hash, mca, heap, heapdot, inner, maskedbit, hybrid, saxpy, dot")
		twoPhase  = flag.Bool("two-phase", false, "use the symbolic+numeric strategy")
		threads   = flag.Int("threads", 0, "worker goroutines (0 = GOMAXPROCS)")
		k         = flag.Int("k", 5, "k-truss order")
		batch     = flag.Int("batch", 64, "BC source batch size")
		repeat    = flag.Int("repeat", 1, "run the application this many times over one prepared graph")
		showStats = flag.Bool("stats", false, "print structural statistics of the graph")
	)
	flag.Parse()

	opt, err := parseOptions(*algo, *twoPhase, *threads)
	if err != nil {
		fatal(err)
	}
	g, err := loadGraph(*input, *rmat, *ef, *seed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges\n", g.Rows, g.NNZ()/2)
	if *showStats {
		stats.Collect(g).Write(os.Stdout)
	}

	if *repeat < 1 {
		*repeat = 1
	}
	switch *app {
	case "tc":
		w := graph.PrepareTriangleCount(g)
		// One plan serves every repeat: the structure is fixed, so runs
		// after the first skip all analysis and steady-state allocation.
		plan, err := w.NewPlan(opt, nil)
		if err != nil {
			fatal(err)
		}
		for run := 0; run < *repeat; run++ {
			start := time.Now()
			count, err := w.CountWith(plan)
			if err != nil {
				fatal(err)
			}
			elapsed := time.Since(start)
			fmt.Printf("triangles: %d\n", count)
			fmt.Printf("masked SpGEMM time: %v  (%.3f GFLOPS)\n", elapsed,
				2*float64(w.Flops())/elapsed.Seconds()/1e9)
		}
	case "ktruss":
		w, err := graph.PrepareKTruss(g)
		if err != nil {
			fatal(err)
		}
		for run := 0; run < *repeat; run++ {
			start := time.Now()
			res, err := w.Run(*k, opt)
			if err != nil {
				fatal(err)
			}
			elapsed := time.Since(start)
			fmt.Printf("%d-truss: %d edges in %d iterations (%d plans from cache)\n",
				*k, res.Truss.NNZ()/2, res.Iterations, res.PlansReused)
			fmt.Printf("total time: %v  (%.3f GFLOPS over masked ops)\n", elapsed,
				2*float64(res.Flops)/elapsed.Seconds()/1e9)
		}
		if *repeat > 1 {
			st := w.CacheStats()
			fmt.Printf("plan cache: %d hits, %d misses, %d entries\n", st.Hits, st.Misses, st.Entries)
		}
	case "bc":
		sources := graph.BatchSources(g.Rows, *batch)
		edges := float64(g.NNZ()) / 2
		for run := 0; run < *repeat; run++ {
			res, err := graph.Betweenness(g, sources, opt)
			if err != nil {
				fatal(err)
			}
			top, topv := 0, -1.0
			for v, c := range res.Centrality {
				if c > topv {
					top, topv = v, c
				}
			}
			fmt.Printf("betweenness: batch=%d depth=%d  top vertex %d (%.1f)\n",
				len(sources), res.Depth, top, topv)
			fmt.Printf("masked SpGEMM time: %v  (%.3f MTEPS)\n", res.MaskedTime,
				float64(len(sources))*edges/res.MaskedTime.Seconds()/1e6)
		}
	case "bfs":
		for run := 0; run < *repeat; run++ {
			start := time.Now()
			res, err := graph.BFS(g, []int32{0}, graph.BFSAuto)
			if err != nil {
				fatal(err)
			}
			elapsed := time.Since(start)
			reached := 0
			for _, l := range res.Level {
				if l >= 0 {
					reached++
				}
			}
			fmt.Printf("bfs: reached %d/%d vertices, depth %d (%d push / %d pull levels)\n",
				reached, g.Rows, res.Depth, res.PushLevels, res.PullLevels)
			fmt.Printf("time: %v\n", elapsed)
		}
	default:
		fatal(fmt.Errorf("unknown app %q (want tc, ktruss, bc, or bfs)", *app))
	}
}

// parseOptions maps CLI strings to core.Options.
func parseOptions(algo string, twoPhase bool, threads int) (core.Options, error) {
	opt := core.Options{Threads: threads}
	switch strings.ToLower(algo) {
	case "msa":
		opt.Algorithm = core.AlgoMSA
	case "hash":
		opt.Algorithm = core.AlgoHash
	case "mca":
		opt.Algorithm = core.AlgoMCA
	case "heap":
		opt.Algorithm = core.AlgoHeap
	case "heapdot":
		opt.Algorithm = core.AlgoHeapDot
	case "inner":
		opt.Algorithm = core.AlgoInner
	case "maskedbit":
		opt.Algorithm = core.AlgoMaskedBit
	case "hybrid":
		opt.Algorithm = core.AlgoHybrid
	case "saxpy":
		opt.Algorithm = core.AlgoSaxpyThenMask
	case "dot":
		opt.Algorithm = core.AlgoDotTranspose
	default:
		return opt, fmt.Errorf("unknown algorithm %q", algo)
	}
	if twoPhase {
		opt.Phases = core.TwoPhase
	}
	return opt, nil
}

// loadGraph reads the input file or generates an R-MAT graph, then
// symmetrizes and cleans it for the undirected applications.
func loadGraph(path string, scale, ef int, seed uint64) (*sparse.CSR[float64], error) {
	if path == "" {
		return gen.RMATSymmetric(gen.RMATConfig{Scale: scale, EdgeFactor: ef, Seed: seed}), nil
	}
	m, _, err := mtx.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("graph must be square, got %dx%d", m.Rows, m.Cols)
	}
	return gen.Symmetrize(m), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}
