package main

import (
	"path/filepath"
	"testing"

	"maskedspgemm/internal/core"
	"maskedspgemm/internal/gen"
	"maskedspgemm/internal/mtx"
)

func TestParseOptions(t *testing.T) {
	cases := []struct {
		algo string
		want core.Algorithm
	}{
		{"msa", core.AlgoMSA},
		{"MSA", core.AlgoMSA},
		{"hash", core.AlgoHash},
		{"mca", core.AlgoMCA},
		{"heap", core.AlgoHeap},
		{"heapdot", core.AlgoHeapDot},
		{"inner", core.AlgoInner},
		{"hybrid", core.AlgoHybrid},
		{"saxpy", core.AlgoSaxpyThenMask},
		{"dot", core.AlgoDotTranspose},
	}
	for _, c := range cases {
		opt, err := parseOptions(c.algo, false, 4)
		if err != nil {
			t.Fatalf("%q: %v", c.algo, err)
		}
		if opt.Algorithm != c.want || opt.Threads != 4 || opt.Phases != core.OnePhase {
			t.Errorf("%q: got %+v", c.algo, opt)
		}
	}
	opt, err := parseOptions("msa", true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Phases != core.TwoPhase {
		t.Error("two-phase flag ignored")
	}
	if _, err := parseOptions("nonsense", false, 0); err == nil {
		t.Error("want error for unknown algorithm")
	}
}

func TestLoadGraph(t *testing.T) {
	// Generated path.
	g, err := loadGraph("", 8, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.Rows != 256 {
		t.Errorf("generated graph has %d rows", g.Rows)
	}
	// File path: write a small graph and read it back symmetrized.
	dir := t.TempDir()
	path := filepath.Join(dir, "g.mtx")
	if err := mtx.WriteFile(path, gen.ErdosRenyi(32, 4, 2)); err != nil {
		t.Fatal(err)
	}
	g2, err := loadGraph(path, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Rows != 32 {
		t.Errorf("loaded graph has %d rows", g2.Rows)
	}
	// Symmetrized on load.
	for i := 0; i < g2.Rows; i++ {
		for _, j := range g2.Row(i) {
			if !g2.Has(int(j), int32(i)) {
				t.Fatal("loaded graph not symmetric")
			}
		}
	}
	// Rectangular file rejected.
	rectPath := filepath.Join(dir, "rect.mtx")
	if err := mtx.WriteFile(rectPath, gen.Random(3, 4, 2, 3)); err != nil {
		t.Fatal(err)
	}
	if _, err := loadGraph(rectPath, 0, 0, 0); err == nil {
		t.Error("want error for rectangular graph file")
	}
	if _, err := loadGraph(filepath.Join(dir, "missing.mtx"), 0, 0, 0); err == nil {
		t.Error("want error for missing file")
	}
}
