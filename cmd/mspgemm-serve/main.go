// Command mspgemm-serve runs the masked-SpGEMM network front-end: an
// HTTP server over a serving Session (structure-keyed plan cache +
// bounded executor pool) with admission control, so saturation sheds
// load predictably instead of queueing unboundedly (DESIGN.md §11).
//
//	mspgemm-serve -addr :8080 -max-inflight 8 -max-queue 32
//
// Endpoints: POST /v1/multiply, PUT /v1/operands, POST /v1/warm,
// GET /stats, GET /healthz. Try it with curl:
//
//	mtxgen -kind er -n 1024 -degree 8 -out g.mtx
//	curl --data-binary @g.mtx 'localhost:8080/v1/multiply?algorithm=hash&format=summary'
//
// Recurring operands can be uploaded once and multiplied by reference
// afterwards — see the README's serving walkthrough:
//
//	REF=$(curl -sT g.mtx localhost:8080/v1/operands | jq -r '.operands[0].ref')
//	curl -X POST "localhost:8080/v1/multiply?a=$REF&format=summary"
//
// On SIGINT/SIGTERM the server drains: new and queued requests are
// rejected with 503, in-flight products finish, then the process
// exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	maskedspgemm "maskedspgemm"
	"maskedspgemm/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		maxInFlight  = flag.Int("max-inflight", 0, "concurrent multiplications (0 = GOMAXPROCS)")
		maxQueue     = flag.Int("max-queue", 0, "queued requests beyond the in-flight bound (0 = 4×max-inflight)")
		queueTimeout = flag.Duration("queue-timeout", 2*time.Second, "default per-request queue deadline")
		retryAfter   = flag.Duration("retry-after", time.Second, "Retry-After hint on shed responses")
		maxBody      = flag.Int64("max-body-bytes", 1<<30, "request body size cap (413 beyond it)")
		bodyTimeout  = flag.Duration("body-read-timeout", time.Minute, "per-request body upload deadline (408 beyond it)")
		maxWarm      = flag.Int("max-warm", 0, "concurrent /v1/warm planning bound (0 = default 2)")
		cacheEntries = flag.Int("cache-entries", 0, "plan-cache entry bound (0 = default 128)")
		cacheBytes   = flag.Int64("cache-bytes", 0, "plan-cache byte bound (0 = unbounded)")
		memBudget    = flag.Int64("memory-budget", 0, "shared byte budget over cached plans and stored operands (0 = default 1GiB)")
		calibrateStr = flag.String("calibrate", "off", "cost-model calibration: off, startup (fit once, bind calibrated), or online (fit + re-bind misbehaving cached plans in the background)")
		panicEvery   = flag.Duration("panic-log-every", time.Minute, "rate limit on kernel-panic log entries: the first contained panic of a kind logs its full stack and request fingerprints, repeats within the interval are counted instead of logged")
		drainWait    = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight work")
	)
	flag.Parse()

	calMode, err := maskedspgemm.ParseCalibrationMode(*calibrateStr)
	if err != nil {
		log.Fatalf("-calibrate: %v", err)
	}

	var sopts []maskedspgemm.SessionOption
	if calMode != maskedspgemm.CalibrateOff {
		sopts = append(sopts, maskedspgemm.WithCalibration(maskedspgemm.CalibrationConfig{Mode: calMode}))
	}
	if *cacheEntries > 0 {
		sopts = append(sopts, maskedspgemm.WithPlanCacheEntries(*cacheEntries))
	}
	if *cacheBytes > 0 {
		sopts = append(sopts, maskedspgemm.WithPlanCacheBytes(*cacheBytes))
	}
	if *memBudget > 0 {
		sopts = append(sopts, maskedspgemm.WithMemoryBudget(*memBudget))
	}
	front := serve.New(serve.Config{
		MaxInFlight:     *maxInFlight,
		MaxQueue:        *maxQueue,
		QueueTimeout:    *queueTimeout,
		RetryAfter:      *retryAfter,
		MaxBodyBytes:    *maxBody,
		BodyReadTimeout: *bodyTimeout,
		MaxWarmInFlight: *maxWarm,
		PanicLogEvery:   *panicEvery,
		SessionOptions:  sopts,
	})
	// ReadHeaderTimeout caps header trickling before a request reaches
	// a handler; body trickling is bounded per request by the serve
	// package's BodyReadTimeout (a whole-request ReadTimeout would also
	// clock queue time, mispricing large-but-honest uploads).
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           front,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("mspgemm-serve listening on %s", *addr)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		log.Fatalf("serve: %v", err)
	case sig := <-sigCh:
		log.Printf("received %v; draining (in-flight finishes, queued and new requests get 503)", sig)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	// Admission drain first (stop starting work), then the HTTP-level
	// shutdown (wait out connections whose handlers are finishing).
	select {
	case <-front.Drain():
	case <-ctx.Done():
		log.Printf("drain timeout: abandoning in-flight work")
	}
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
	log.Printf("drained; bye")
}
