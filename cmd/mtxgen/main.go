// Command mtxgen writes synthetic graphs in Matrix Market format so
// external tools (or the original C++ implementation) can consume the
// exact same inputs this reproduction benchmarks.
//
// Usage:
//
//	mtxgen -kind rmat -scale 14 -ef 16 -seed 1 -out graph.mtx
//	mtxgen -kind er -n 4096 -degree 16 -out er.mtx
//	mtxgen -kind grid -n 128 -out grid.mtx
//	mtxgen -kind ba -n 8192 -degree 8 -out ba.mtx
package main

import (
	"flag"
	"fmt"
	"os"

	"maskedspgemm/internal/gen"
	"maskedspgemm/internal/mtx"
	"maskedspgemm/internal/sparse"
)

func main() {
	var (
		kind   = flag.String("kind", "rmat", "generator: rmat, er, grid, ba")
		scale  = flag.Int("scale", 12, "R-MAT scale (2^scale vertices)")
		ef     = flag.Int("ef", 16, "R-MAT edge factor")
		n      = flag.Int("n", 4096, "vertex count (er/ba) or side length (grid)")
		degree = flag.Int("degree", 16, "row degree (er) / attachment count (ba)")
		seed   = flag.Uint64("seed", 1, "generator seed")
		symm   = flag.Bool("symmetric", true, "symmetrize the output graph")
		out    = flag.String("out", "", "output path (default stdout)")
	)
	flag.Parse()

	var m *sparse.CSR[float64]
	switch *kind {
	case "rmat":
		cfg := gen.RMATConfig{Scale: *scale, EdgeFactor: *ef, Seed: *seed}
		if *symm {
			m = gen.RMATSymmetric(cfg)
		} else {
			m = gen.RMAT(cfg)
		}
	case "er":
		m = gen.ErdosRenyi(*n, *degree, *seed)
		if *symm {
			m = gen.Symmetrize(m)
		}
	case "grid":
		m = gen.Grid2D(*n, *n)
	case "ba":
		m = gen.BarabasiAlbert(*n, *degree, *seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown kind %q\n", *kind)
		os.Exit(2)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := mtx.Write(w, m); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %dx%d matrix, %d entries\n", m.Rows, m.Cols, m.NNZ())
}
